#include "runtime/system.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"

namespace frame::runtime {

EdgeSystem::EdgeSystem(SystemOptions options, std::vector<ProxyGroup> proxies)
    : options_(options) {
  if (options_.transport == Transport::kInproc) {
    auto inproc = std::make_unique<InprocBus>();
    inproc_ = inproc.get();
    bus_ = std::move(inproc);
  } else {
    auto tcp = std::make_unique<TcpBus>();
    tcp->set_connect_timeout(options_.connect_timeout);
    bus_ = std::move(tcp);
  }
  if (options_.fault_plan.has_value()) {
    // The decorator owns the real transport; inproc_ stays valid for the
    // latency wiring below because FaultyBus never destroys its inner bus
    // before its own shutdown.
    auto faulty =
        std::make_unique<FaultyBus>(std::move(bus_), *options_.fault_plan);
    faulty_ = faulty.get();
    bus_ = std::move(faulty);
  }
  // Collect the dense topic table.
  for (const auto& proxy : proxies) {
    for (const auto& spec : proxy.topics) topics_.push_back(spec);
  }
  std::sort(topics_.begin(), topics_.end(),
            [](const TopicSpec& a, const TopicSpec& b) { return a.id < b.id; });
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    assert(topics_[i].id == static_cast<TopicId>(i) &&
           "topic ids must be dense 0..n-1");
  }

  // Link latencies (Fig. 6: LAN switch + cloud uplink).  Only the
  // in-process transport shapes latency; TCP runs at loopback speed.
  const auto wire = [&](NodeId a, NodeId b, Duration latency) {
    if (inproc_ == nullptr) return;
    inproc_->set_link_latency(a, b, latency);
    inproc_->set_link_latency(b, a, latency);
  };
  if (inproc_ != nullptr) {
    inproc_->set_default_latency(options_.edge_latency);
  }
  wire(nodes_.primary, nodes_.backup, options_.backup_latency);
  wire(nodes_.primary, nodes_.cloud_subscriber, options_.cloud_latency);
  wire(nodes_.backup, nodes_.cloud_subscriber, options_.cloud_latency);

  // Brokers.
  const BrokerConfig broker_cfg = broker_config(options_.config);
  RuntimeBroker::Options primary_opts;
  primary_opts.node = nodes_.primary;
  primary_opts.peer = nodes_.backup;
  primary_opts.start_as_primary = true;
  primary_opts.broker = broker_cfg;
  primary_opts.poll_period = options_.detector_poll;
  primary_opts.poll_miss_threshold = options_.detector_misses;
  // Both brokers get the same shard count: the Backup's shards sit empty
  // until a promotion turns it into the serving Primary.
  primary_opts.shards = resolve_shard_count(options_.shards);
  primary_ = std::make_unique<RuntimeBroker>(*bus_, clock_, primary_opts,
                                             topics_, options_.timing);

  RuntimeBroker::Options backup_opts = primary_opts;
  backup_opts.node = nodes_.backup;
  backup_opts.peer = nodes_.primary;
  backup_opts.start_as_primary = false;
  backup_ = std::make_unique<RuntimeBroker>(*bus_, clock_, backup_opts,
                                            topics_, options_.timing);

  // Subscribers (ES1, ES2, CS1) and subscriptions on both brokers.
  const NodeId sub_nodes[3] = {nodes_.edge_subscriber_1,
                               nodes_.edge_subscriber_2,
                               nodes_.cloud_subscriber};
  for (const NodeId node : sub_nodes) {
    subscribers_.push_back(
        std::make_unique<RuntimeSubscriber>(*bus_, clock_, node));
  }
  for (const auto& spec : topics_) {
    const int index = subscriber_index_of(spec.id);
    subscribers_[index]->add_topic(spec);
    primary_->subscribe(spec.id, sub_nodes[index]);
    backup_->subscribe(spec.id, sub_nodes[index]);
  }

  // Publisher proxies; each proxy publishes to the Primary until failover.
  NodeId pub_node = nodes_.first_publisher;
  for (const auto& proxy : proxies) {
    wire(pub_node, nodes_.primary, options_.publisher_latency);
    wire(pub_node, nodes_.backup, options_.publisher_latency);
    RuntimePublisher::Options pub_opts;
    pub_opts.node = pub_node;
    pub_opts.primary = nodes_.primary;
    pub_opts.backup = nodes_.backup;
    pub_opts.poll_period = options_.detector_poll;
    pub_opts.poll_miss_threshold = options_.detector_misses;
    publishers_.push_back(std::make_unique<RuntimePublisher>(
        *bus_, clock_, pub_opts, proxy.topics, proxy.period));
    std::vector<TopicId> ids;
    for (const auto& spec : proxy.topics) ids.push_back(spec.id);
    publisher_topics_.push_back(std::move(ids));
    ++pub_node;
  }

  // Arm the flight recorder (no-op unless FRAME_POSTMORTEM_DIR is set) and
  // give it this system's wall anchor so a bundle's trace.dump stitches
  // onto the same wall axis as live /trace scrapes.
  obs::flight_recorder().configure_from_env();
  obs::flight_recorder().set_wall_anchor(wall_now_ns() - clock_.now());
  obs::flight_recorder().install_fatal_handlers();
  if (obs::enabled()) obs::slo().configure(topics_);

  if (options_.telemetry_port.has_value()) {
    obs::HttpExporter::Options http;
    http.port = *options_.telemetry_port;
    http.healthz = [this](int& status) { return healthz_json(&status); };
    http.trace_dump = [this] { return obs::serialize_dump(trace_dump()); };
    auto endpoint = obs::HttpExporter::create(std::move(http));
    if (endpoint.is_ok()) {
      telemetry_ = endpoint.take();
    } else {
      FRAME_LOG_WARN("telemetry endpoint disabled: %s",
                     endpoint.status().message().c_str());
    }
  }
}

EdgeSystem::~EdgeSystem() { stop(); }

std::string EdgeSystem::healthz_json(int* status_out) const {
  const bool primary_serving = primary_->is_primary();
  const bool backup_serving = backup_->is_primary();
  const bool degraded = primary_serving && !primary_->has_live_peer();
  // Whoever is serving without a live peer has replication suspended: the
  // original degraded mode on the Primary, or a promoted Backup that has
  // no Backup of its own.  Either way fault tolerance is gone and the
  // endpoint must fail readiness probes.
  const bool serving_unprotected =
      degraded || (backup_serving && !backup_->has_live_peer());
  bool critical = false;
  if (obs::enabled()) {
    obs::slo().evaluate(obs::slo().latest_now());
    critical = obs::slo().critical_firing();
  }
  const char* reason = serving_unprotected ? "serving without live peer"
                       : critical          ? "critical alert firing"
                                           : "";
  if (status_out != nullptr) {
    *status_out = serving_unprotected || critical ? 503 : 200;
  }
  std::size_t failed_over = 0;
  for (const auto& pub : publishers_) {
    if (pub->failed_over()) ++failed_over;
  }
  std::string out = "{\"status\":\"";
  out += backup_serving ? "failed-over" : (degraded ? "degraded" : "ok");
  if (reason[0] != '\0') {
    out += "\",\"reason\":\"";
    out += reason;
  }
  out += "\",\"critical_alert\":";
  out += critical ? "true" : "false";
  out += ",\"role\":\"";
  out += backup_serving ? "backup-promoted" : "primary";
  out += "\",\"primary_serving\":";
  out += primary_serving ? "true" : "false";
  out += ",\"backup_serving\":";
  out += backup_serving ? "true" : "false";
  out += ",\"primary_sees_live_peer\":";
  out += primary_->has_live_peer() ? "true" : "false";
  out += ",\"degraded\":";
  out += degraded ? "true" : "false";
  out += ",\"publishers_failed_over\":" + std::to_string(failed_over);
  out += ",\"publishers\":" + std::to_string(publishers_.size());
  out += "}\n";
  return out;
}

int EdgeSystem::subscriber_index_of(TopicId topic) const {
  if (topics_[topic].destination == Destination::kCloud) return 2;
  return static_cast<int>(topic % 2);
}

void EdgeSystem::start() {
  primary_->start();
  backup_->start();
  for (auto& pub : publishers_) pub->start();
}

void EdgeSystem::stop() {
  for (auto& pub : publishers_) pub->stop();
  if (primary_) primary_->stop();
  if (backup_) backup_->stop();
  bus_->shutdown();
}

void EdgeSystem::crash_primary() {
  obs::hooks::crash_injected(nodes_.primary, clock_.now());
  primary_->crash();
}

void EdgeSystem::crash_backup() {
  obs::hooks::crash_injected(nodes_.backup, clock_.now());
  backup_->crash();
}

void EdgeSystem::rejoin_crashed_primary() {
  primary_->restart_as_backup(nodes_.backup);
}

void EdgeSystem::rejoin_crashed_backup() {
  backup_->restart_as_backup(nodes_.primary);
}

bool EdgeSystem::wait_for_degraded(Duration timeout) {
  const TimePoint deadline = clock_.now() + timeout;
  while (clock_.now() < deadline) {
    if (primary_->is_primary() && !primary_->has_live_peer()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

bool EdgeSystem::wait_for_replication_restored(Duration timeout) {
  const TimePoint deadline = clock_.now() + timeout;
  while (clock_.now() < deadline) {
    if (primary_->is_primary() && primary_->has_live_peer()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

bool EdgeSystem::wait_for_failover(Duration timeout) {
  const TimePoint deadline = clock_.now() + timeout;
  while (clock_.now() < deadline) {
    bool all = backup_->is_primary();
    for (const auto& pub : publishers_) all = all && pub->failed_over();
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

std::uint64_t EdgeSystem::messages_created() const {
  std::uint64_t total = 0;
  for (const auto& pub : publishers_) total += pub->messages_created();
  return total;
}

std::uint64_t EdgeSystem::messages_delivered() const {
  std::uint64_t total = 0;
  for (const auto& sub : subscribers_) total += sub->total_unique();
  return total;
}

SeqNo EdgeSystem::last_seq(TopicId topic) const {
  for (std::size_t i = 0; i < publishers_.size(); ++i) {
    for (const TopicId id : publisher_topics_[i]) {
      if (id == topic) {
        // The engine tracks per-topic sequence numbers.
        return publishers_[i]->messages_created() == 0
                   ? 0
                   : publishers_[i]->last_seq(topic);
      }
    }
  }
  return 0;
}

}  // namespace frame::runtime
