// Whole-deployment assembly mirroring the paper's Fig. 6 topology on one
// process: publisher proxies, a Primary and a Backup broker, two edge
// subscriber hosts and one cloud subscriber, wired over the latency-
// injecting in-process bus.  Used by the examples and integration tests.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/faulty_bus.hpp"
#include "net/inproc_bus.hpp"
#include "net/tcp_bus.hpp"
#include "obs/http_exporter.hpp"
#include "obs/stitch.hpp"
#include "runtime/runtime_broker.hpp"
#include "runtime/runtime_publisher.hpp"
#include "runtime/runtime_subscriber.hpp"

namespace frame::runtime {

struct ProxyGroup {
  Duration period = 0;
  std::vector<TopicSpec> topics;
};

/// Which Bus implementation carries the deployment's frames.
enum class Transport : std::uint8_t {
  kInproc = 0,  ///< in-process queues with latency injection (default)
  kTcp = 1,     ///< real loopback TCP sockets (no latency shaping)
};

struct SystemOptions {
  ConfigName config = ConfigName::kFrame;
  Transport transport = Transport::kInproc;
  TimingParams timing;               ///< analysis parameters (ΔBS bounds, x...)
  Duration edge_latency = microseconds(300);   ///< injected one-way, LAN
  Duration cloud_latency = milliseconds(20);   ///< injected one-way, WAN
  Duration backup_latency = microseconds(50);  ///< Primary -> Backup
  Duration publisher_latency = microseconds(200);
  Duration detector_poll = milliseconds(10);
  int detector_misses = 3;
  /// Primary hot-path shards per broker.  0 = auto: the FRAME_SHARDS
  /// environment variable when set, else hardware_concurrency capped at 8
  /// (see resolve_shard_count).  1 reproduces the pre-sharding broker.
  std::size_t shards = 0;
  /// TCP transport only: cap on one connect attempt.  Bounds the time a
  /// publisher can lose to a dead Primary address during fail-over.
  Duration connect_timeout = milliseconds(250);
  /// When set, the transport is wrapped in a FaultyBus applying this
  /// scripted fault plan (works over inproc and TCP alike).
  std::optional<FaultPlan> fault_plan;
  /// When set, serve live telemetry (GET /metrics, /snapshot.json,
  /// /healthz, /trace) on this loopback port; 0 picks an ephemeral port
  /// (read it back via EdgeSystem::telemetry_port()).
  std::optional<std::uint16_t> telemetry_port;
};

/// Node-id layout of the assembled system.
struct SystemNodes {
  NodeId primary = 1;
  NodeId backup = 2;
  NodeId edge_subscriber_1 = 10;
  NodeId edge_subscriber_2 = 11;
  NodeId cloud_subscriber = 12;
  NodeId first_publisher = 100;
};

class EdgeSystem {
 public:
  EdgeSystem(SystemOptions options, std::vector<ProxyGroup> proxies);
  ~EdgeSystem();

  EdgeSystem(const EdgeSystem&) = delete;
  EdgeSystem& operator=(const EdgeSystem&) = delete;

  void start();
  void stop();

  /// Fail-stop crash of the Primary broker (the paper's SIGKILL).
  void crash_primary();

  /// Fail-stop crash of the Backup broker: the Primary must detect it and
  /// degrade (keep dispatching without replication) within
  /// detection_bound().
  void crash_backup();

  /// Waits until every publisher has redirected to the Backup.
  bool wait_for_failover(Duration timeout);

  /// Waits until the Primary has declared its Backup dead (degraded mode).
  bool wait_for_degraded(Duration timeout);

  /// Waits until the Primary again sees a live Backup (replication resumed).
  bool wait_for_replication_restored(Duration timeout);

  /// Backup reintegration: restarts the crashed original Primary as the
  /// new Backup of the promoted broker, restoring one-failure tolerance.
  void rejoin_crashed_primary();

  /// Restarts a crashed Backup as Backup of the still-serving Primary.
  void rejoin_crashed_backup();

  /// Worst-case crash-to-suspicion latency of the configured detector.
  Duration detection_bound() const {
    return options_.detector_poll * (options_.detector_misses + 1);
  }

  /// The fault-injection layer; null unless options.fault_plan was set.
  FaultyBus* faults() { return faulty_; }
  const SystemNodes& nodes() const { return nodes_; }

  /// Bound telemetry port; 0 when options.telemetry_port was not set.
  std::uint16_t telemetry_port() const {
    return telemetry_ ? telemetry_->port() : 0;
  }

  /// Role / peer-liveness / degraded-mode summary (the /healthz body).
  /// When `status_out` is non-null it receives the HTTP status: 503 when
  /// the serving broker lacks a live peer (replication suspended — PR 3's
  /// degraded mode, or post-failover with no Backup of the Backup) or a
  /// critical SLO alert is firing, 200 otherwise.
  std::string healthz_json(int* status_out = nullptr) const;

  /// The local tracer ring as a stitchable dump, wall-anchored against
  /// this system's driving clock.
  obs::TraceDump trace_dump(std::string process = "edge-system") const {
    return obs::collect_local_dump(std::move(process),
                                   wall_now_ns() - clock_.now());
  }

  const std::vector<TopicSpec>& topics() const { return topics_; }
  int subscriber_index_of(TopicId topic) const;

  RuntimeSubscriber& subscriber(int index) { return *subscribers_[index]; }
  RuntimeBroker& primary() { return *primary_; }
  RuntimeBroker& backup() { return *backup_; }
  RuntimePublisher& publisher(std::size_t index) { return *publishers_[index]; }
  std::size_t publisher_count() const { return publishers_.size(); }

  std::uint64_t messages_created() const;
  std::uint64_t messages_delivered() const;

  SeqNo last_seq(TopicId topic) const;

 private:
  SystemOptions options_;
  SystemNodes nodes_;
  std::vector<TopicSpec> topics_;
  MonotonicClock clock_;
  std::unique_ptr<Bus> bus_;
  InprocBus* inproc_ = nullptr;  ///< non-null when transport == kInproc
  FaultyBus* faulty_ = nullptr;  ///< non-null when a fault plan is set
  std::unique_ptr<RuntimeBroker> primary_;
  std::unique_ptr<RuntimeBroker> backup_;
  std::vector<std::unique_ptr<RuntimeSubscriber>> subscribers_;
  std::vector<std::unique_ptr<RuntimePublisher>> publishers_;
  std::vector<std::vector<TopicId>> publisher_topics_;
  std::unique_ptr<obs::HttpExporter> telemetry_;
};

}  // namespace frame::runtime
