// Whole-deployment assembly mirroring the paper's Fig. 6 topology on one
// process: publisher proxies, a Primary and a Backup broker, two edge
// subscriber hosts and one cloud subscriber, wired over the latency-
// injecting in-process bus.  Used by the examples and integration tests.
#pragma once

#include <memory>
#include <vector>

#include "net/inproc_bus.hpp"
#include "net/tcp_bus.hpp"
#include "runtime/runtime_broker.hpp"
#include "runtime/runtime_publisher.hpp"
#include "runtime/runtime_subscriber.hpp"

namespace frame::runtime {

struct ProxyGroup {
  Duration period = 0;
  std::vector<TopicSpec> topics;
};

/// Which Bus implementation carries the deployment's frames.
enum class Transport : std::uint8_t {
  kInproc = 0,  ///< in-process queues with latency injection (default)
  kTcp = 1,     ///< real loopback TCP sockets (no latency shaping)
};

struct SystemOptions {
  ConfigName config = ConfigName::kFrame;
  Transport transport = Transport::kInproc;
  TimingParams timing;               ///< analysis parameters (ΔBS bounds, x...)
  Duration edge_latency = microseconds(300);   ///< injected one-way, LAN
  Duration cloud_latency = milliseconds(20);   ///< injected one-way, WAN
  Duration backup_latency = microseconds(50);  ///< Primary -> Backup
  Duration publisher_latency = microseconds(200);
  Duration detector_poll = milliseconds(10);
  int detector_misses = 3;
  /// TCP transport only: cap on one connect attempt.  Bounds the time a
  /// publisher can lose to a dead Primary address during fail-over.
  Duration connect_timeout = milliseconds(250);
};

/// Node-id layout of the assembled system.
struct SystemNodes {
  NodeId primary = 1;
  NodeId backup = 2;
  NodeId edge_subscriber_1 = 10;
  NodeId edge_subscriber_2 = 11;
  NodeId cloud_subscriber = 12;
  NodeId first_publisher = 100;
};

class EdgeSystem {
 public:
  EdgeSystem(SystemOptions options, std::vector<ProxyGroup> proxies);
  ~EdgeSystem();

  EdgeSystem(const EdgeSystem&) = delete;
  EdgeSystem& operator=(const EdgeSystem&) = delete;

  void start();
  void stop();

  /// Fail-stop crash of the Primary broker (the paper's SIGKILL).
  void crash_primary();

  /// Waits until every publisher has redirected to the Backup.
  bool wait_for_failover(Duration timeout);

  /// Backup reintegration: restarts the crashed original Primary as the
  /// new Backup of the promoted broker, restoring one-failure tolerance.
  void rejoin_crashed_primary();

  const std::vector<TopicSpec>& topics() const { return topics_; }
  int subscriber_index_of(TopicId topic) const;

  RuntimeSubscriber& subscriber(int index) { return *subscribers_[index]; }
  RuntimeBroker& primary() { return *primary_; }
  RuntimeBroker& backup() { return *backup_; }
  RuntimePublisher& publisher(std::size_t index) { return *publishers_[index]; }
  std::size_t publisher_count() const { return publishers_.size(); }

  std::uint64_t messages_created() const;
  std::uint64_t messages_delivered() const;

  SeqNo last_seq(TopicId topic) const;

 private:
  SystemOptions options_;
  SystemNodes nodes_;
  std::vector<TopicSpec> topics_;
  MonotonicClock clock_;
  std::unique_ptr<Bus> bus_;
  InprocBus* inproc_ = nullptr;  ///< non-null when transport == kInproc
  std::unique_ptr<RuntimeBroker> primary_;
  std::unique_ptr<RuntimeBroker> backup_;
  std::vector<std::unique_ptr<RuntimeSubscriber>> subscribers_;
  std::vector<std::unique_ptr<RuntimePublisher>> publishers_;
  std::vector<std::vector<TopicId>> publisher_topics_;
};

}  // namespace frame::runtime
