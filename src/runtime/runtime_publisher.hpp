// Real-thread publisher proxy: periodic batch creation, retention, crash
// detection (its fail-over time x) and retained-message resend to the
// Backup, as in Section III-B.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "broker/publisher_engine.hpp"
#include "common/time.hpp"
#include "net/bus.hpp"
#include "net/wire.hpp"

namespace frame::runtime {

class RuntimePublisher {
 public:
  struct Options {
    NodeId node = kInvalidNode;
    NodeId primary = kInvalidNode;
    NodeId backup = kInvalidNode;
    Duration poll_period = milliseconds(10);
    int poll_miss_threshold = 3;
  };

  RuntimePublisher(Bus& bus, const MonotonicClock& clock,
                   Options options, std::vector<TopicSpec> topics,
                   Duration period);
  ~RuntimePublisher();

  RuntimePublisher(const RuntimePublisher&) = delete;
  RuntimePublisher& operator=(const RuntimePublisher&) = delete;

  void start();
  void stop();

  /// True once the publisher no longer targets the original Primary.
  bool failed_over() const {
    return target_.load(std::memory_order_acquire) != options_.primary;
  }

  /// Broker currently receiving this publisher's traffic.
  NodeId current_target() const {
    return target_.load(std::memory_order_acquire);
  }

  /// Number of fail-overs performed (second broker crash -> 2).
  int failover_count() const {
    return failovers_.load(std::memory_order_acquire);
  }
  std::uint64_t messages_created() const {
    return engine_->messages_created();
  }
  SeqNo last_seq(TopicId topic) const { return engine_->last_seq(topic); }

 private:
  void run_loop();
  void on_frame(NodeId from, std::vector<std::uint8_t> frame);

  Bus& bus_;
  const MonotonicClock& clock_;
  Options options_;
  std::unique_ptr<PublisherEngine> engine_;

  std::atomic<bool> stop_{false};
  std::atomic<NodeId> target_{kInvalidNode};
  std::atomic<int> failovers_{0};
  std::atomic<TimePoint> last_target_reply_{0};
  std::thread worker_;
};

}  // namespace frame::runtime
