#include "runtime/runtime_publisher.hpp"

#include "broker/failure_detector.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"

namespace frame::runtime {

RuntimePublisher::RuntimePublisher(Bus& bus, const MonotonicClock& clock,
                                   Options options,
                                   std::vector<TopicSpec> topics,
                                   Duration period)
    : bus_(bus), clock_(clock), options_(options) {
  engine_ = std::make_unique<PublisherEngine>(options_.node, std::move(topics),
                                              period);
  target_.store(options_.primary, std::memory_order_release);
  bus_.register_endpoint(options_.node,
                         [this](NodeId from, std::vector<std::uint8_t> frame) {
                           on_frame(from, std::move(frame));
                         });
}

RuntimePublisher::~RuntimePublisher() { stop(); }

void RuntimePublisher::start() {
  stop_.store(false, std::memory_order_release);
  last_target_reply_.store(clock_.now(), std::memory_order_release);
  worker_ = std::thread([this] { run_loop(); });
}

void RuntimePublisher::stop() {
  stop_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
}

void RuntimePublisher::on_frame(NodeId from, std::vector<std::uint8_t> frame) {
  // A corrupted frame is not proof of life: only a checksum-clean
  // kPollReply from the current target feeds the failure detector.
  if (!frame_checksum_ok(frame)) {
    obs::hooks::wire_corrupt_frame(options_.node);
    return;
  }
  if (from == target_.load(std::memory_order_acquire) &&
      peek_type(frame) == WireType::kPollReply) {
    last_target_reply_.store(clock_.now(), std::memory_order_release);
  }
}

void RuntimePublisher::run_loop() {
  obs::ThreadNodeScope node_scope(options_.node);
  PollingFailureDetector detector(options_.poll_period,
                                  options_.poll_miss_threshold);
  detector.start(clock_.now());

  const Duration period = engine_->period();
  TimePoint next_batch = clock_.now();
  TimePoint next_poll = clock_.now();

  while (!stop_.load(std::memory_order_acquire)) {
    const TimePoint now = clock_.now();
    const NodeId target = target_.load(std::memory_order_acquire);

    if (now >= next_poll) {
      bus_.send(options_.node, target,
                encode_control_frame(WireType::kPoll));
      next_poll = now + options_.poll_period;
    }
    detector.on_reply(last_target_reply_.load(std::memory_order_acquire));
    if (detector.suspected(now)) {
      // Fail-over (Section III-B): redirect to the other broker and
      // re-send all retained messages.  Works for repeated failures as
      // long as a reintegrated Backup exists.
      const NodeId next_target =
          target == options_.primary ? options_.backup : options_.primary;
      FRAME_LOG_INFO("publisher %u: failing over to broker %u",
                     options_.node, next_target);
      const TimePoint replay_start = clock_.now();
      std::size_t resent = 0;
      for (const auto& msg : engine_->failover_resend()) {
        bus_.send(options_.node, next_target,
                  encode_message_frame(WireType::kResend, msg));
        ++resent;
      }
      const TimePoint replay_end = clock_.now();
      obs::hooks::retention_replay(options_.node, replay_end,
                                   replay_end - replay_start, resent);
      target_.store(next_target, std::memory_order_release);
      obs::hooks::publisher_redirected(options_.node, clock_.now());
      failovers_.fetch_add(1, std::memory_order_acq_rel);
      last_target_reply_.store(now, std::memory_order_release);
      detector.start(now);
    }

    if (now >= next_batch) {
      for (const auto& msg : engine_->create_batch(now)) {
        const Status sent = bus_.try_send(
            options_.node, target_.load(std::memory_order_acquire),
            encode_message_frame(WireType::kPublish, msg));
        if (sent.code() == StatusCode::kCapacity) {
          // Transport backpressure: the wire cannot absorb this batch.
          // The message stays in the retention buffer; count the shed so
          // capacity planning can see it.
          obs::hooks::send_backpressure(options_.node);
        }
      }
      next_batch += period;
    }

    const TimePoint wake = std::min(next_batch, next_poll);
    const TimePoint current = clock_.now();
    if (wake > current) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          std::min<Duration>(wake - current, milliseconds(2))));
    }
  }
}

}  // namespace frame::runtime
