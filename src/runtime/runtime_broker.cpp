#include "runtime/runtime_broker.hpp"

#include "broker/failure_detector.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"

namespace frame::runtime {

namespace {
constexpr eventsvc::EventType kMessageEventType = 1;
}

RuntimeBroker::RuntimeBroker(Bus& bus, const MonotonicClock& clock,
                             Options options, std::vector<TopicSpec> topics,
                             TimingParams params)
    : bus_(bus),
      clock_(clock),
      options_(options),
      topics_(std::move(topics)),
      params_(params),
      channel_(std::make_unique<eventsvc::SynchronousDispatcher>()) {
  if (options_.start_as_primary) {
    primary_ = std::make_unique<PrimaryEngine>(options_.broker, topics_,
                                               params_);
    is_primary_.store(true, std::memory_order_release);
    has_peer_.store(true, std::memory_order_release);
  } else {
    backup_ = std::make_unique<BackupEngine>(options_.broker);
    backup_->configure(topics_.size());
  }

  // Fig. 5b wiring: supplier pushes land in FRAME's Message Proxy.
  channel_.set_intake_hook([this](const eventsvc::Event& event) {
    if (auto msg = decode_message_frame(event.payload)) {
      on_publish_frame(*msg);
    }
  });

  bus_.register_endpoint(options_.node,
                         [this](NodeId from, std::vector<std::uint8_t> frame) {
                           on_frame(from, std::move(frame));
                         });
}

RuntimeBroker::~RuntimeBroker() { stop(); }

void RuntimeBroker::subscribe(TopicId topic, NodeId subscriber) {
  std::lock_guard lock(mutex_);
  subscriptions_.emplace_back(topic, subscriber);
  if (primary_) primary_->subscribe(topic, subscriber);
  // Consumer proxy: pushing to it sends the event payload over the bus.
  auto& proxy = channel_.obtain_push_supplier(subscriber);
  if (!proxy.connected()) {
    proxy.connect([this, subscriber](const eventsvc::Event& event) {
      const Status sent =
          bus_.try_send(options_.node, subscriber, event.payload);
      if (sent.code() == StatusCode::kCapacity) {
        obs::hooks::send_backpressure(options_.node);
      }
    });
  }
}

void RuntimeBroker::start() {
  stop_.store(false, std::memory_order_release);
  last_peer_reply_ = clock_.now();
  for (std::size_t i = 0; i < options_.delivery_threads; ++i) {
    delivery_pool_.emplace_back([this] { delivery_loop(); });
  }
  if (!options_.start_as_primary) {
    detector_ = std::thread([this] { detector_loop(); });
  }
}

void RuntimeBroker::stop() {
  stop_.store(true, std::memory_order_release);
  job_cv_.notify_all();
  for (auto& worker : delivery_pool_) {
    if (worker.joinable()) worker.join();
  }
  delivery_pool_.clear();
  if (detector_.joinable()) detector_.join();
}

void RuntimeBroker::crash() {
  crashed_.store(true, std::memory_order_release);
  bus_.crash(options_.node);
  job_cv_.notify_all();
}

PrimaryEngine::Stats RuntimeBroker::primary_stats() const {
  std::lock_guard lock(mutex_);
  return primary_ ? primary_->stats() : PrimaryEngine::Stats{};
}

BackupEngine::Stats RuntimeBroker::backup_stats() const {
  std::lock_guard lock(mutex_);
  return backup_ ? backup_->stats() : BackupEngine::Stats{};
}

void RuntimeBroker::send_message(NodeId to, WireType type,
                                 const Message& msg) {
  bus_.send(options_.node, to, encode_message_frame(type, msg));
}

void RuntimeBroker::on_frame(NodeId from, std::vector<std::uint8_t> frame) {
  if (crashed_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return;
  }
  const auto type = peek_type(frame);
  if (!type.has_value()) return;
  switch (*type) {
    case WireType::kPublish:
    case WireType::kResend: {
      // Route through the event channel's Supplier Proxy so the Fig. 5b
      // integration surface (push hook) is exercised for real.
      eventsvc::Event event;
      event.header.source = from;
      event.header.type = kMessageEventType;
      event.header.creation_time = clock_.now();
      event.payload = std::move(frame);
      channel_.obtain_push_consumer(from).push(event);
      break;
    }
    case WireType::kReplicate: {
      if (auto msg = decode_message_frame(frame)) {
        std::lock_guard lock(mutex_);
        if (backup_) backup_->on_replica(*msg, clock_.now());
      }
      break;
    }
    case WireType::kPrune: {
      if (auto prune = decode_prune_frame(frame)) {
        std::lock_guard lock(mutex_);
        if (backup_) backup_->on_prune(prune->topic, prune->seq);
      }
      break;
    }
    case WireType::kPoll: {
      bus_.send(options_.node, from,
                encode_control_frame(WireType::kPollReply));
      break;
    }
    case WireType::kPollReply: {
      std::lock_guard lock(mutex_);
      last_peer_reply_ = clock_.now();
      break;
    }
    case WireType::kSubscribe: {
      if (auto sub = decode_subscribe_frame(frame)) {
        subscribe(sub->topic, sub->subscriber);
      }
      break;
    }
    case WireType::kHello: {
      const auto hello = decode_hello_frame(frame);
      if (!hello.has_value() ||
          hello->role != static_cast<std::uint8_t>(NodeRole::kBackupBroker)) {
        break;
      }
      // A fresh Backup joined: ship the sync set and resume replication.
      std::vector<Message> sync;
      {
        std::lock_guard lock(mutex_);
        if (primary_) sync = primary_->backup_sync_set();
        options_.peer = hello->node;
      }
      for (const auto& msg : sync) {
        send_message(hello->node, WireType::kReplicate, msg);
      }
      has_peer_.store(true, std::memory_order_release);
      FRAME_LOG_INFO("broker %u: backup %u joined, synced %zu copies",
                     options_.node, hello->node, sync.size());
      break;
    }
    default:
      break;
  }
}

void RuntimeBroker::on_publish_frame(const Message& msg) {
  {
    std::lock_guard lock(mutex_);
    if (!primary_) {
      // Not promoted yet: a redirected publisher raced ahead of the
      // detector.  Store straight into the Backup Buffer so the copy is
      // part of the recovery set.
      if (backup_) backup_->on_replica(msg, clock_.now());
      return;
    }
    primary_->on_publish(msg, clock_.now(),
                         has_peer_.load(std::memory_order_acquire));
  }
  job_cv_.notify_one();
}

void RuntimeBroker::delivery_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    job_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             crashed_.load(std::memory_order_relaxed) ||
             (primary_ && primary_->has_jobs());
    });
    if (stop_.load(std::memory_order_relaxed) ||
        crashed_.load(std::memory_order_relaxed)) {
      return;
    }
    auto job = primary_->next_job();
    if (!job.has_value()) continue;

    if (job->kind == JobKind::kDispatch) {
      DispatchEffect effect = primary_->execute_dispatch(*job, clock_.now());
      const bool prune = effect.prune_backup &&
                         options_.peer != kInvalidNode &&
                         has_peer_.load(std::memory_order_acquire);
      lock.unlock();
      if (effect.executed) {
        Message msg = effect.msg;
        msg.dispatched_at = clock_.now();
        const auto frame = encode_message_frame(WireType::kDeliver, msg);
        for (const NodeId subscriber : effect.subscribers) {
          eventsvc::Event event;
          event.header.source = options_.node;
          event.header.type = kMessageEventType;
          event.payload = frame;
          channel_.deliver_to(subscriber, event);
        }
        if (prune) {
          bus_.send(options_.node, options_.peer,
                    encode_prune_frame(PruneFrame{job->topic, job->seq}));
        }
      }
      lock.lock();
    } else {
      ReplicateEffect effect = primary_->execute_replicate(*job, clock_.now());
      lock.unlock();
      if (effect.executed && options_.peer != kInvalidNode &&
          has_peer_.load(std::memory_order_acquire)) {
        send_message(options_.peer, WireType::kReplicate, effect.msg);
      }
      lock.lock();
    }
  }
}

void RuntimeBroker::detector_loop() {
  PollingFailureDetector detector(options_.poll_period,
                                  options_.poll_miss_threshold);
  detector.start(clock_.now());
  while (!stop_.load(std::memory_order_acquire) &&
         !crashed_.load(std::memory_order_acquire)) {
    bus_.send(options_.node, options_.peer,
              encode_control_frame(WireType::kPoll));
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.poll_period));
    {
      std::lock_guard lock(mutex_);
      detector.on_reply(last_peer_reply_);
    }
    if (detector.suspected(clock_.now())) {
      obs::hooks::failover_detected(options_.node, clock_.now());
      promote();
      return;
    }
  }
}

void RuntimeBroker::promote() {
  {
    std::lock_guard lock(mutex_);
    if (primary_ || !backup_) return;
    FRAME_LOG_INFO("broker %u: promoting to Primary", options_.node);
    primary_ = std::make_unique<PrimaryEngine>(options_.broker, topics_,
                                               params_);
    for (const auto& [topic, subscriber] : subscriptions_) {
      primary_->subscribe(topic, subscriber);
    }
    // Recovery: dispatch the pruned Backup Buffer set first (Section IV-A).
    const TimePoint now = clock_.now();
    const std::vector<Message> recovery = backup_->promote();
    for (const auto& msg : recovery) {
      primary_->on_recovery_copy(msg, now);
    }
    obs::hooks::promotion_complete(options_.node, clock_.now(),
                                   recovery.size());
    has_peer_.store(false, std::memory_order_release);
    is_primary_.store(true, std::memory_order_release);
  }
  job_cv_.notify_all();
}

void RuntimeBroker::restart_as_backup(NodeId new_primary) {
  stop();  // join any threads from the previous life
  {
    std::lock_guard lock(mutex_);
    primary_.reset();
    backup_ = std::make_unique<BackupEngine>(options_.broker);
    backup_->configure(topics_.size());
    options_.peer = new_primary;
    options_.start_as_primary = false;
  }
  is_primary_.store(false, std::memory_order_release);
  has_peer_.store(false, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  bus_.restore(options_.node);
  start();
  bus_.send(options_.node, new_primary,
            encode_hello_frame(HelloFrame{
                options_.node,
                static_cast<std::uint8_t>(NodeRole::kBackupBroker)}));
}

}  // namespace frame::runtime
