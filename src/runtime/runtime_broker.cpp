#include "runtime/runtime_broker.hpp"

#include <algorithm>
#include <chrono>

#include "broker/failure_detector.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"

namespace frame::runtime {

namespace {
constexpr eventsvc::EventType kMessageEventType = 1;

void accumulate(PrimaryEngine::Stats& total, const PrimaryEngine::Stats& s) {
  total.arrivals += s.arrivals;
  total.recovery_arrivals += s.recovery_arrivals;
  total.dispatch_jobs_created += s.dispatch_jobs_created;
  total.replicate_jobs_created += s.replicate_jobs_created;
  total.dispatches_executed += s.dispatches_executed;
  total.replications_executed += s.replications_executed;
  total.replications_aborted += s.replications_aborted;
  total.replicate_jobs_cancelled += s.replicate_jobs_cancelled;
  total.prune_requests += s.prune_requests;
  total.stale_jobs += s.stale_jobs;
  total.overwritten_undelivered += s.overwritten_undelivered;
}
}  // namespace

RuntimeBroker::RuntimeBroker(Bus& bus, const MonotonicClock& clock,
                             Options options, std::vector<TopicSpec> topics,
                             TimingParams params)
    : bus_(bus),
      clock_(clock),
      options_(options),
      topics_(std::move(topics)),
      params_(params),
      channel_(std::make_unique<eventsvc::SynchronousDispatcher>()) {
  options_.shards = std::clamp<std::size_t>(options_.shards, 1, kMaxShards);
  shards_.reserve(options_.shards);
  for (std::size_t k = 0; k < options_.shards; ++k) {
    shards_.push_back(std::make_unique<Shard>(options_.shard_inbox_capacity));
  }

  if (options_.start_as_primary) {
    for (auto& shard : shards_) {
      shard->engine = std::make_unique<PrimaryEngine>(options_.broker,
                                                      topics_, params_);
    }
    is_primary_.store(true, std::memory_order_release);
    has_peer_.store(true, std::memory_order_release);
  } else {
    backup_ = std::make_unique<BackupEngine>(options_.broker);
    backup_->configure(topics_.size());
  }

  // Fig. 5b wiring: supplier pushes land in FRAME's Message Proxy.  The
  // hook runs on the producer's thread and must not decode: it peeks the
  // topic and hands the raw frame to the owning shard.
  channel_.set_intake_hook([this](const eventsvc::Event& event) {
    on_publish_event(event);
  });

  bus_.register_endpoint(options_.node,
                         [this](NodeId from, std::vector<std::uint8_t> frame) {
                           on_frame(from, std::move(frame));
                         });
}

RuntimeBroker::~RuntimeBroker() { stop(); }

void RuntimeBroker::subscribe(TopicId topic, NodeId subscriber) {
  std::lock_guard lock(mutex_);
  subscriptions_.emplace_back(topic, subscriber);
  {
    // Only the owning shard's engine ever sees this topic's traffic, so
    // only it needs the subscription.
    Shard& shard = *shards_[shard_index(topic)];
    std::lock_guard shard_lock(shard.mutex);
    if (shard.engine) shard.engine->subscribe(topic, subscriber);
  }
  // Consumer proxy: pushing to it sends the event payload over the bus.
  auto& proxy = channel_.obtain_push_supplier(subscriber);
  if (!proxy.connected()) {
    proxy.connect([this, subscriber](const eventsvc::Event& event) {
      const Status sent =
          bus_.try_send(options_.node, subscriber, event.payload);
      if (sent.code() == StatusCode::kCapacity) {
        obs::hooks::send_backpressure(options_.node);
      }
    });
  }
}

void RuntimeBroker::start() {
  stop_.store(false, std::memory_order_release);
  {
    // The bus endpoint is live from construction, so inbound frames may
    // already be touching last_peer_reply_.
    std::lock_guard lock(mutex_);
    last_peer_reply_ = clock_.now();
  }
  // Spread the delivery threads across shards, at least one lane each.
  // shards == 1 keeps the original pool-of-3 shape.
  const std::size_t shards = shards_.size();
  const std::size_t threads =
      std::max(options_.delivery_threads, shards);
  for (std::size_t k = 0; k < shards; ++k) {
    const std::size_t lanes =
        threads / shards + (k < threads % shards ? 1 : 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      delivery_pool_.emplace_back([this, k] { shard_loop(k); });
    }
  }
  // Both roles watch their peer: the Backup to promote itself, the Primary
  // to stop replicating to (and blocking on) a dead Backup.
  if (options_.peer != kInvalidNode) {
    detector_ = std::thread([this] { detector_loop(); });
  }
}

void RuntimeBroker::stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->cv.notify_all();
  }
  for (auto& worker : delivery_pool_) {
    if (worker.joinable()) worker.join();
  }
  delivery_pool_.clear();
  if (detector_.joinable()) detector_.join();
}

void RuntimeBroker::crash() {
  crashed_.store(true, std::memory_order_release);
  bus_.crash(options_.node);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->cv.notify_all();
  }
}

PrimaryEngine::Stats RuntimeBroker::primary_stats() const {
  PrimaryEngine::Stats total{};
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    if (shard->engine) accumulate(total, shard->engine->stats());
  }
  return total;
}

BackupEngine::Stats RuntimeBroker::backup_stats() const {
  std::lock_guard lock(mutex_);
  return backup_ ? backup_->stats() : BackupEngine::Stats{};
}

void RuntimeBroker::send_message(NodeId to, WireType type,
                                 const Message& msg) {
  bus_.send(options_.node, to, encode_message_frame(type, msg));
}

void RuntimeBroker::on_frame(NodeId from, std::vector<std::uint8_t> frame) {
  if (crashed_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return;
  }
  // Attribute any spans recorded while handling this frame (engine code
  // is node-agnostic) to this broker, whatever thread the bus used.
  obs::ThreadNodeScope node_scope(options_.node);
  // CRC32C gate: a corrupted or truncated frame is rejected before any
  // dispatch on the type tag, so garbage never reaches an engine.
  if (!frame_checksum_ok(frame)) {
    corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
    obs::hooks::wire_corrupt_frame(options_.node);
    return;
  }
  const auto type = peek_type(frame);
  if (!type.has_value()) return;
  switch (*type) {
    case WireType::kPublish:
    case WireType::kResend: {
      // Route through the event channel's Supplier Proxy so the Fig. 5b
      // integration surface (push hook) is exercised for real.
      eventsvc::Event event;
      event.header.source = from;
      event.header.type = kMessageEventType;
      event.header.creation_time = clock_.now();
      event.payload = std::move(frame);
      channel_.obtain_push_consumer(from).push(event);
      break;
    }
    case WireType::kReplicate: {
      if (auto msg = decode_message_frame(frame)) {
        std::lock_guard lock(mutex_);
        if (backup_) backup_->on_replica(*msg, clock_.now());
      }
      break;
    }
    case WireType::kPrune: {
      if (auto prune = decode_prune_frame(frame)) {
        std::lock_guard lock(mutex_);
        if (backup_) backup_->on_prune(prune->topic, prune->seq);
      }
      break;
    }
    case WireType::kPoll: {
      // An inbound poll is itself proof the peer is alive (a restarted
      // Backup polls before its Hello settles).
      if (from == options_.peer) {
        std::lock_guard lock(mutex_);
        if (clock_.now() > last_peer_reply_) last_peer_reply_ = clock_.now();
      }
      bus_.send(options_.node, from,
                encode_control_frame(WireType::kPollReply));
      break;
    }
    case WireType::kPollReply: {
      std::lock_guard lock(mutex_);
      last_peer_reply_ = clock_.now();
      break;
    }
    case WireType::kSubscribe: {
      if (auto sub = decode_subscribe_frame(frame)) {
        subscribe(sub->topic, sub->subscriber);
      }
      break;
    }
    case WireType::kHello: {
      const auto hello = decode_hello_frame(frame);
      if (!hello.has_value() ||
          hello->role != static_cast<std::uint8_t>(NodeRole::kBackupBroker)) {
        break;
      }
      // A fresh Backup joined: ship the sync set (gathered across every
      // shard engine) and resume replication.
      std::vector<Message> sync;
      {
        std::lock_guard lock(mutex_);
        for (auto& shard : shards_) {
          std::lock_guard shard_lock(shard->mutex);
          if (shard->engine) {
            auto part = shard->engine->backup_sync_set();
            sync.insert(sync.end(), part.begin(), part.end());
          }
        }
        options_.peer = hello->node;
        // The Hello is proof of life; without this the detector could
        // re-suspect the new Backup before its first poll reply lands.
        if (clock_.now() > last_peer_reply_) last_peer_reply_ = clock_.now();
      }
      for (const auto& msg : sync) {
        send_message(hello->node, WireType::kReplicate, msg);
      }
      const bool was_degraded = !has_peer_.load(std::memory_order_acquire);
      has_peer_.store(true, std::memory_order_release);
      if (was_degraded) {
        obs::hooks::backup_joined(hello->node, clock_.now());
      }
      FRAME_LOG_INFO("broker %u: backup %u joined, synced %zu copies",
                     options_.node, hello->node, sync.size());
      break;
    }
    default:
      break;
  }
}

void RuntimeBroker::on_publish_event(const eventsvc::Event& event) {
  if (crashed_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return;
  }
  if (is_primary_.load(std::memory_order_acquire)) {
    // Primary fast path: no decode, no global lock — peek the topic and
    // hand the frame to its shard.  Engines exist for the whole time
    // is_primary_ is true (promote creates them before the flag flips).
    route_to_shard(event.payload);
    return;
  }
  // Backup / not-yet-promoted: a redirected publisher raced ahead of the
  // detector.  Store straight into the Backup Buffer so the copy is part
  // of the recovery set.
  const auto msg = decode_message_frame(event.payload);
  if (!msg.has_value()) return;
  {
    std::lock_guard lock(mutex_);
    // promote() flips is_primary_ while holding mutex_, so this re-check
    // is race-free: either we are still Backup here, or the shard engines
    // are fully built and the fast path below is safe.
    if (!is_primary_.load(std::memory_order_acquire)) {
      if (backup_) backup_->on_replica(*msg, clock_.now());
      return;
    }
  }
  route_to_shard(event.payload);
}

void RuntimeBroker::route_to_shard(const std::vector<std::uint8_t>& frame) {
  const auto topic = peek_message_topic(frame);
  if (!topic.has_value()) return;
  Shard& shard = *shards_[shard_index(*topic)];
  std::vector<std::uint8_t> copy = frame;
  while (!shard.inbox.try_push(copy)) {
    // Bounded ring full: backpressure the producer rather than drop an
    // accepted publish.  Lanes drain continuously, so this resolves unless
    // the broker is crashing — in which case the frame is droppable
    // in-flight traffic anyway.
    if (crashed_.load(std::memory_order_acquire) ||
        stop_.load(std::memory_order_acquire)) {
      return;
    }
    inbox_backpressure_.fetch_add(1, std::memory_order_relaxed);
    obs::hooks::send_backpressure(options_.node);
    std::this_thread::yield();
  }
  // Wake an idle lane.  The fence pairs with the one in shard_loop: either
  // the lane sees our push when it re-checks the inbox, or we see its
  // idle_lanes increment and notify.  The empty lock_guard closes the gap
  // where the lane has re-checked but not yet entered wait.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.idle_lanes.load(std::memory_order_relaxed) > 0) {
    { std::lock_guard lock(shard.mutex); }
    shard.cv.notify_one();
  }
}

bool RuntimeBroker::mark_dispatched_locked(Shard& shard, TopicId topic,
                                           SeqNo seq) {
  auto& bits = shard.dispatched_bits[topic];
  const std::size_t word = static_cast<std::size_t>(seq / 64);
  const std::uint64_t mask = 1ull << (seq % 64);
  if (word >= bits.size()) bits.resize(word + 1, 0);
  if (bits[word] & mask) return false;
  bits[word] |= mask;
  return true;
}

bool RuntimeBroker::drain_inbox_locked(Shard& shard) {
  bool admitted = false;
  while (auto frame = shard.inbox.try_pop()) {
    admitted = true;
    const auto msg = decode_message_frame(*frame);
    if (!msg.has_value()) continue;
    if (!shard.engine) {
      // Demoted mid-flight (restart_as_backup drains inboxes, but a frame
      // can still slip in between drain and lane shutdown): in-flight
      // traffic at a role change is droppable, same as a crash.
      continue;
    }
    // Retention-replay dedup: a kResend (or a duplicated kPublish) for a
    // seq this broker already queued for dispatch must not double-deliver.
    if (!mark_dispatched_locked(shard, msg->topic, msg->seq)) {
      duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
      obs::hooks::broker_duplicate_suppressed(msg->topic, msg->seq);
      continue;
    }
    shard.engine->on_publish(*msg, clock_.now(),
                             has_peer_.load(std::memory_order_acquire));
  }
  // If admission created several jobs, one lane cannot drain them alone.
  if (admitted && shard.idle_lanes.load(std::memory_order_relaxed) > 0) {
    shard.cv.notify_one();
  }
  return admitted;
}

void RuntimeBroker::shard_loop(std::size_t shard_index) {
  obs::ThreadNodeScope node_scope(options_.node);
  // With one shard, record into the unsharded base series (pre-sharding
  // behaviour); with several, split per shard and fold at scrape time.
  obs::ShardScope shard_scope(shards_.size() > 1 ? shard_index
                                                 : obs::kNoShard);
  Shard& shard = *shards_[shard_index];
  std::unique_lock lock(shard.mutex);
  while (true) {
    if (stop_.load(std::memory_order_relaxed) ||
        crashed_.load(std::memory_order_relaxed)) {
      return;
    }
    // Admit pending frames first: admission is what creates jobs, and the
    // proxy timestamps (ΔPB) should reflect the hand-off wait.
    const bool admitted = drain_inbox_locked(shard);

    std::optional<Job> job;
    if (shard.engine) job = shard.engine->next_job();
    if (!job.has_value()) {
      if (admitted) continue;  // drained frames but no runnable job yet
      // Idle: publish intent, re-check the inbox (pairs with the producer
      // fence in route_to_shard), then wait with a timeout backstop.
      shard.idle_lanes.fetch_add(1, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (shard.inbox.empty()) {
        shard.cv.wait_for(lock, std::chrono::milliseconds(2));
      }
      shard.idle_lanes.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }

    // Per-stage attribution: queue delay is execute-start minus the job's
    // release (the same clock the enqueue hook stamped), service is the
    // rest of the delivery work.  Sharing t_exec with execute_* keeps
    // queue_delay + service identical to the stitched enqueue->done span.
    const TimePoint t_exec = clock_.now();
    const Duration queue_delay = t_exec - job->release;

    if (job->kind == JobKind::kDispatch) {
      DispatchEffect effect = shard.engine->execute_dispatch(*job, t_exec);
      const bool prune = effect.prune_backup &&
                         options_.peer != kInvalidNode &&
                         has_peer_.load(std::memory_order_acquire);
      lock.unlock();
      if (effect.executed) {
        Message msg = effect.msg;
        msg.dispatched_at = clock_.now();
        if (msg.trace_id != 0) ++msg.hop;  // crossing broker -> subscriber
        const auto frame = encode_message_frame(WireType::kDeliver, msg);
        for (const NodeId subscriber : effect.subscribers) {
          eventsvc::Event event;
          event.header.source = options_.node;
          event.header.type = kMessageEventType;
          event.payload = frame;
          channel_.deliver_to(subscriber, event);
        }
        if (prune) {
          bus_.send(options_.node, options_.peer,
                    encode_prune_frame(PruneFrame{job->topic, job->seq}));
        }
        const TimePoint t_done = clock_.now();
        obs::hooks::dispatch_stage(job->topic, job->seq, t_done, queue_delay,
                                   t_done - t_exec, effect.msg.trace_id);
      }
      lock.lock();
    } else {
      ReplicateEffect effect = shard.engine->execute_replicate(*job, t_exec);
      lock.unlock();
      if (effect.executed && options_.peer != kInvalidNode &&
          has_peer_.load(std::memory_order_acquire)) {
        Message copy = effect.msg;
        if (copy.trace_id != 0) ++copy.hop;  // crossing Primary -> Backup
        send_message(options_.peer, WireType::kReplicate, copy);
        obs::hooks::replicate_stage(queue_delay, clock_.now() - t_exec);
      }
      lock.lock();
    }
  }
}

void RuntimeBroker::detector_loop() {
  obs::ThreadNodeScope node_scope(options_.node);
  PollingFailureDetector detector(options_.poll_period,
                                  options_.poll_miss_threshold);
  detector.start(clock_.now());
  while (!stop_.load(std::memory_order_acquire) &&
         !crashed_.load(std::memory_order_acquire)) {
    NodeId peer;
    {
      std::lock_guard lock(mutex_);
      peer = options_.peer;  // a Hello can repoint it mid-run
    }
    bus_.send(options_.node, peer, encode_control_frame(WireType::kPoll));
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options_.poll_period));
    {
      std::lock_guard lock(mutex_);
      detector.on_reply(last_peer_reply_);
    }
    const bool suspected = detector.suspected(clock_.now());
    if (is_primary()) {
      // Primary side: a dead Backup means degraded mode — stop sending
      // replicas/prunes into the void; resume when a peer proves life
      // again (poll replies or a reintegration Hello).
      const bool live = has_peer_.load(std::memory_order_acquire);
      if (suspected && live) {
        has_peer_.store(false, std::memory_order_release);
        degraded_entries_.fetch_add(1, std::memory_order_relaxed);
        obs::hooks::backup_lost(peer, clock_.now());
        FRAME_LOG_INFO("broker %u: backup %u suspected dead, degraded mode",
                       options_.node, peer);
      } else if (!suspected && !live) {
        has_peer_.store(true, std::memory_order_release);
        obs::hooks::backup_joined(peer, clock_.now());
        FRAME_LOG_INFO("broker %u: backup %u is back, replication resumed",
                       options_.node, peer);
      }
    } else if (suspected) {
      obs::hooks::failover_detected(options_.node, clock_.now());
      promote();
      // Keep running: the promoted Primary now watches for a reintegrated
      // Backup (and for its death in turn).  promote() left has_peer_
      // false, so the next Hello or fresh reply flips us out of degraded.
      detector.start(clock_.now());
    }
  }
}

void RuntimeBroker::promote() {
  {
    std::lock_guard lock(mutex_);
    if (is_primary_.load(std::memory_order_acquire) || !backup_) return;
    FRAME_LOG_INFO("broker %u: promoting to Primary", options_.node);
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      Shard& shard = *shards_[k];
      std::lock_guard shard_lock(shard.mutex);
      shard.engine = std::make_unique<PrimaryEngine>(options_.broker,
                                                     topics_, params_);
      for (const auto& [topic, subscriber] : subscriptions_) {
        if (shard_index(topic) == k) shard.engine->subscribe(topic, subscriber);
      }
    }
    // Recovery: dispatch the pruned Backup Buffer set first (Section IV-A).
    // Each copy routes through its owning shard's dedup bitmap so the
    // retention resends that follow promotion cannot re-admit a seq
    // recovered here.
    const TimePoint now = clock_.now();
    const std::vector<Message> recovery = backup_->promote();
    std::size_t recovered = 0;
    for (const auto& msg : recovery) {
      const std::size_t idx = shard_index(msg.topic);
      Shard& shard = *shards_[idx];
      std::lock_guard shard_lock(shard.mutex);
      obs::ShardScope shard_scope(shards_.size() > 1 ? idx : obs::kNoShard);
      if (!mark_dispatched_locked(shard, msg.topic, msg.seq)) {
        duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
        obs::hooks::broker_duplicate_suppressed(msg.topic, msg.seq);
        continue;
      }
      shard.engine->on_recovery_copy(msg, now);
      recovered += 1;
    }
    obs::hooks::promotion_complete(options_.node, clock_.now(), recovered);
    has_peer_.store(false, std::memory_order_release);
    is_primary_.store(true, std::memory_order_release);
  }
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mutex);
    shard->cv.notify_all();
  }
}

void RuntimeBroker::restart_as_backup(NodeId new_primary) {
  stop();  // join any threads from the previous life
  {
    std::lock_guard lock(mutex_);
    for (auto& shard : shards_) {
      std::lock_guard shard_lock(shard->mutex);
      shard->engine.reset();
      // A restarted process has no dispatch history; the subscriber-side
      // bitmap is the guard against cross-life duplicates.
      shard->dispatched_bits.clear();
      // Frames from the previous life are droppable in-flight traffic.
      while (shard->inbox.try_pop()) {
      }
    }
    backup_ = std::make_unique<BackupEngine>(options_.broker);
    backup_->configure(topics_.size());
    options_.peer = new_primary;
    options_.start_as_primary = false;
  }
  is_primary_.store(false, std::memory_order_release);
  has_peer_.store(false, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  bus_.restore(options_.node);
  start();
  bus_.send(options_.node, new_primary,
            encode_hello_frame(HelloFrame{
                options_.node,
                static_cast<std::uint8_t>(NodeRole::kBackupBroker)}));
}

}  // namespace frame::runtime
