// Real-thread broker hosts over the in-process bus.
//
// This is the deployment-shaped counterpart of the simulator: the same
// PrimaryEngine / BackupEngine state machines, driven by actual threads and
// the monotonic clock, wired into a TAO-style event channel (Fig. 5b): the
// Supplier Proxies' push hook feeds FRAME's Message Proxy, and FRAME's
// Message Delivery pushes out through the Consumer Proxies.
//
// Threading (DESIGN.md §12): the Primary hot path is partitioned into
// `shards` independent lanes.  Topics map to shards by consistent hash
// (core/topic_sharding.hpp), so one topic's admissions, EDF queue and
// dispatch/replicate jobs all live in a single shard — per-topic deadline
// order (the property Lemmas 1/2 need) is preserved while unrelated topics
// proceed in parallel.  Producers (bus endpoint handlers, publishers racing
// a promotion) hand raw frames to a shard through a bounded MPSC ring; the
// shard's lane threads drain the ring, admit under the shard mutex, then
// pop one EDF job and perform network sends outside any lock.  Everything
// that is not per-topic hot path (Backup engine, failure detector state,
// subscriptions, peer identity) stays behind the global mutex.  Lock order
// is strictly global -> shard; no path takes them in the other direction.
// With shards == 1 this degenerates to the original single-queue broker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "broker/backup_engine.hpp"
#include "broker/config.hpp"
#include "broker/primary_engine.hpp"
#include "common/mpsc_ring.hpp"
#include "core/topic_sharding.hpp"
#include "eventsvc/event_channel.hpp"
#include "net/bus.hpp"
#include "net/wire.hpp"

namespace frame::runtime {

enum class NodeRole : std::uint8_t {
  kPublisher = 0,
  kPrimaryBroker = 1,
  kBackupBroker = 2,
  kSubscriber = 3,
};

/// A broker host.  Starts as Primary or Backup; a Backup promotes itself
/// when its failure detector suspects the Primary.
class RuntimeBroker {
 public:
  struct Options {
    NodeId node = kInvalidNode;
    NodeId peer = kInvalidNode;           ///< the other broker
    bool start_as_primary = false;
    BrokerConfig broker;
    std::size_t delivery_threads = 3;     ///< paper: 3x cores; scaled down
    /// Primary hot-path shards (clamped to [1, kMaxShards]).  The
    /// delivery threads are spread across shards, at least one lane each.
    std::size_t shards = 1;
    /// Capacity of each shard's frame hand-off ring (rounded to 2^k).
    std::size_t shard_inbox_capacity = 1024;
    Duration poll_period = milliseconds(10);
    int poll_miss_threshold = 3;
  };

  RuntimeBroker(Bus& bus, const MonotonicClock& clock, Options options,
                std::vector<TopicSpec> topics, TimingParams params);
  ~RuntimeBroker();

  RuntimeBroker(const RuntimeBroker&) = delete;
  RuntimeBroker& operator=(const RuntimeBroker&) = delete;

  /// Registers a subscriber for a topic (applies now and after promotion).
  void subscribe(TopicId topic, NodeId subscriber);

  void start();
  void stop();

  /// Fail-stop crash: stops serving immediately (also crash the node on the
  /// bus so in-flight traffic is dropped).
  void crash();

  /// Backup reintegration: restarts this (crashed) broker as the new Backup
  /// of `new_primary`.  It announces itself with a Hello; the serving
  /// Primary replies with a state sync of its undispatched replicating
  /// copies and resumes replication.  Tolerates a subsequent crash of the
  /// new Primary.
  void restart_as_backup(NodeId new_primary);

  bool is_primary() const { return is_primary_.load(std::memory_order_acquire); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// False while the peer is suspected dead (degraded mode as Primary: no
  /// replication or prunes are sent until the Backup reintegrates).
  bool has_live_peer() const {
    return has_peer_.load(std::memory_order_acquire);
  }

  /// Inbound frames rejected by the CRC32C gate before any decode.
  std::uint64_t corrupt_frames() const {
    return corrupt_frames_.load(std::memory_order_relaxed);
  }

  /// Admissions suppressed because this broker had already dispatched (or
  /// queued for dispatch) that (topic, seq) — retention-replay dedup.
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }

  /// Times this broker, while Primary, declared its Backup dead.
  std::uint64_t degraded_entries() const {
    return degraded_entries_.load(std::memory_order_relaxed);
  }

  /// Pushes that found a shard inbox full and had to spin (backpressure).
  std::uint64_t inbox_backpressure() const {
    return inbox_backpressure_.load(std::memory_order_relaxed);
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// Aggregate across all shard engines (empty when not Primary).
  PrimaryEngine::Stats primary_stats() const;
  BackupEngine::Stats backup_stats() const;

  /// The event channel, exposed for tests that want to observe the Fig. 5b
  /// integration.
  eventsvc::EventChannel& channel() { return channel_; }

 private:
  /// One partition of the Primary hot path.  `engine`, `dispatched_bits`
  /// and everything reached through them are guarded by `mutex`; the inbox
  /// is lock-free on the producer side and drained under `mutex` so lanes
  /// of the same shard admit in ring order.
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::atomic<int> idle_lanes{0};
    std::unique_ptr<PrimaryEngine> engine;
    /// Per-topic bitmap of seqs this broker admitted for dispatch.
    std::unordered_map<TopicId, std::vector<std::uint64_t>> dispatched_bits;
    MpscRing<std::vector<std::uint8_t>> inbox;
    explicit Shard(std::size_t inbox_capacity) : inbox(inbox_capacity) {}
  };

  std::size_t shard_index(TopicId topic) const {
    return shard_of_topic(topic, shards_.size());
  }

  void on_frame(NodeId from, std::vector<std::uint8_t> frame);
  /// Intake hook: fast-path a publish/resend frame to its shard's ring, or
  /// fall back to the Backup Buffer under the global mutex.
  void on_publish_event(const eventsvc::Event& event);
  void route_to_shard(const std::vector<std::uint8_t>& frame);
  void shard_loop(std::size_t shard_index);
  /// Admits every frame currently in the shard's inbox.  Returns true if
  /// anything was consumed.  Caller holds the shard mutex.
  bool drain_inbox_locked(Shard& shard);
  void detector_loop();
  void promote();
  void send_message(NodeId to, WireType type, const Message& msg);

  /// Records (topic, seq) as dispatched-or-queued at THIS broker; returns
  /// false if it already was (the admission must be suppressed).  Only
  /// tracks this broker's own dispatch decisions — never peer prunes: a
  /// prune proves the PEER dispatched, and trusting it here would turn the
  /// prune-applied/deliver-lost crash race into a permanent gap.  Caller
  /// holds the shard's mutex.
  static bool mark_dispatched_locked(Shard& shard, TopicId topic, SeqNo seq);

  Bus& bus_;
  const MonotonicClock& clock_;
  Options options_;
  std::vector<TopicSpec> topics_;
  TimingParams params_;

  eventsvc::EventChannel channel_;

  /// Global state: Backup engine, subscriptions, peer identity, detector
  /// bookkeeping.  Lock order: mutex_ before any Shard::mutex.
  mutable std::mutex mutex_;
  std::unique_ptr<BackupEngine> backup_;
  std::vector<std::pair<TopicId, NodeId>> subscriptions_;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> is_primary_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> stop_{false};
  /// True while a live Backup peer exists (replication + prunes flow).
  std::atomic<bool> has_peer_{false};
  std::atomic<std::uint64_t> corrupt_frames_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::atomic<std::uint64_t> degraded_entries_{0};
  std::atomic<std::uint64_t> inbox_backpressure_{0};
  TimePoint last_peer_reply_ = 0;

  std::vector<std::thread> delivery_pool_;
  std::thread detector_;
};

}  // namespace frame::runtime
