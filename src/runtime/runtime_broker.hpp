// Real-thread broker hosts over the in-process bus.
//
// This is the deployment-shaped counterpart of the simulator: the same
// PrimaryEngine / BackupEngine state machines, driven by actual threads and
// the monotonic clock, wired into a TAO-style event channel (Fig. 5b): the
// Supplier Proxies' push hook feeds FRAME's Message Proxy, and FRAME's
// Message Delivery pushes out through the Consumer Proxies.
//
// Threading: the engines are single-threaded state machines, so all engine
// access is serialised by one mutex; the Dispatcher/Replicator pool pops
// jobs under the lock and performs network sends outside it, mirroring the
// paper's pool of generic threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "broker/backup_engine.hpp"
#include "broker/config.hpp"
#include "broker/primary_engine.hpp"
#include "eventsvc/event_channel.hpp"
#include "net/bus.hpp"
#include "net/wire.hpp"

namespace frame::runtime {

enum class NodeRole : std::uint8_t {
  kPublisher = 0,
  kPrimaryBroker = 1,
  kBackupBroker = 2,
  kSubscriber = 3,
};

/// A broker host.  Starts as Primary or Backup; a Backup promotes itself
/// when its failure detector suspects the Primary.
class RuntimeBroker {
 public:
  struct Options {
    NodeId node = kInvalidNode;
    NodeId peer = kInvalidNode;           ///< the other broker
    bool start_as_primary = false;
    BrokerConfig broker;
    std::size_t delivery_threads = 3;     ///< paper: 3x cores; scaled down
    Duration poll_period = milliseconds(10);
    int poll_miss_threshold = 3;
  };

  RuntimeBroker(Bus& bus, const MonotonicClock& clock, Options options,
                std::vector<TopicSpec> topics, TimingParams params);
  ~RuntimeBroker();

  RuntimeBroker(const RuntimeBroker&) = delete;
  RuntimeBroker& operator=(const RuntimeBroker&) = delete;

  /// Registers a subscriber for a topic (applies now and after promotion).
  void subscribe(TopicId topic, NodeId subscriber);

  void start();
  void stop();

  /// Fail-stop crash: stops serving immediately (also crash the node on the
  /// bus so in-flight traffic is dropped).
  void crash();

  /// Backup reintegration: restarts this (crashed) broker as the new Backup
  /// of `new_primary`.  It announces itself with a Hello; the serving
  /// Primary replies with a state sync of its undispatched replicating
  /// copies and resumes replication.  Tolerates a subsequent crash of the
  /// new Primary.
  void restart_as_backup(NodeId new_primary);

  bool is_primary() const { return is_primary_.load(std::memory_order_acquire); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// False while the peer is suspected dead (degraded mode as Primary: no
  /// replication or prunes are sent until the Backup reintegrates).
  bool has_live_peer() const {
    return has_peer_.load(std::memory_order_acquire);
  }

  /// Inbound frames rejected by the CRC32C gate before any decode.
  std::uint64_t corrupt_frames() const {
    return corrupt_frames_.load(std::memory_order_relaxed);
  }

  /// Admissions suppressed because this broker had already dispatched (or
  /// queued for dispatch) that (topic, seq) — retention-replay dedup.
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }

  /// Times this broker, while Primary, declared its Backup dead.
  std::uint64_t degraded_entries() const {
    return degraded_entries_.load(std::memory_order_relaxed);
  }

  PrimaryEngine::Stats primary_stats() const;
  BackupEngine::Stats backup_stats() const;

  /// The event channel, exposed for tests that want to observe the Fig. 5b
  /// integration.
  eventsvc::EventChannel& channel() { return channel_; }

 private:
  void on_frame(NodeId from, std::vector<std::uint8_t> frame);
  void on_publish_frame(const Message& msg);
  void delivery_loop();
  void detector_loop();
  void promote();
  void send_message(NodeId to, WireType type, const Message& msg);

  /// Records (topic, seq) as dispatched-or-queued at THIS broker; returns
  /// false if it already was (the admission must be suppressed).  Only
  /// tracks this broker's own dispatch decisions — never peer prunes: a
  /// prune proves the PEER dispatched, and trusting it here would turn the
  /// prune-applied/deliver-lost crash race into a permanent gap.
  bool mark_dispatched_locked(TopicId topic, SeqNo seq);

  Bus& bus_;
  const MonotonicClock& clock_;
  Options options_;
  std::vector<TopicSpec> topics_;
  TimingParams params_;

  eventsvc::EventChannel channel_;

  mutable std::mutex mutex_;
  std::condition_variable job_cv_;
  std::unique_ptr<PrimaryEngine> primary_;
  std::unique_ptr<BackupEngine> backup_;
  std::vector<std::pair<TopicId, NodeId>> subscriptions_;
  /// Per-topic bitmap of seqs this broker admitted for dispatch.
  std::unordered_map<TopicId, std::vector<std::uint64_t>> dispatched_bits_;

  std::atomic<bool> is_primary_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> stop_{false};
  /// True while a live Backup peer exists (replication + prunes flow).
  std::atomic<bool> has_peer_{false};
  std::atomic<std::uint64_t> corrupt_frames_{0};
  std::atomic<std::uint64_t> duplicates_suppressed_{0};
  std::atomic<std::uint64_t> degraded_entries_{0};
  TimePoint last_peer_reply_ = 0;

  std::vector<std::thread> delivery_pool_;
  std::thread detector_;
};

}  // namespace frame::runtime
