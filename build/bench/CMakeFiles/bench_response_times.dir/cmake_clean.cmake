file(REMOVE_RECURSE
  "CMakeFiles/bench_response_times.dir/bench_response_times.cpp.o"
  "CMakeFiles/bench_response_times.dir/bench_response_times.cpp.o.d"
  "bench_response_times"
  "bench_response_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_response_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
