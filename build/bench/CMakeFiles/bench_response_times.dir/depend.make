# Empty dependencies file for bench_response_times.
# This may be replaced when dependencies are built.
