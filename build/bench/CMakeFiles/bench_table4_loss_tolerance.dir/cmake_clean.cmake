file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_loss_tolerance.dir/bench_table4_loss_tolerance.cpp.o"
  "CMakeFiles/bench_table4_loss_tolerance.dir/bench_table4_loss_tolerance.cpp.o.d"
  "bench_table4_loss_tolerance"
  "bench_table4_loss_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_loss_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
