# Empty compiler generated dependencies file for bench_fig8_cloud_latency.
# This may be replaced when dependencies are built.
