
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scenario_table2.cpp" "bench/CMakeFiles/bench_scenario_table2.dir/bench_scenario_table2.cpp.o" "gcc" "bench/CMakeFiles/bench_scenario_table2.dir/bench_scenario_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/frame_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/frame_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsvc/CMakeFiles/frame_eventsvc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/frame_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/frame_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frame_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
