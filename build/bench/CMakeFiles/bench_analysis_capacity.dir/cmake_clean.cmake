file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_capacity.dir/bench_analysis_capacity.cpp.o"
  "CMakeFiles/bench_analysis_capacity.dir/bench_analysis_capacity.cpp.o.d"
  "bench_analysis_capacity"
  "bench_analysis_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
