# Empty dependencies file for bench_ablation_selective.
# This may be replaced when dependencies are built.
