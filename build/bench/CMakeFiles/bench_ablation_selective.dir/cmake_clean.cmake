file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selective.dir/bench_ablation_selective.cpp.o"
  "CMakeFiles/bench_ablation_selective.dir/bench_ablation_selective.cpp.o.d"
  "bench_ablation_selective"
  "bench_ablation_selective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
