# Empty compiler generated dependencies file for bench_latency_distribution.
# This may be replaced when dependencies are built.
