file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_buffers.cpp.o"
  "CMakeFiles/test_core.dir/core/test_buffers.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_capacity.cpp.o"
  "CMakeFiles/test_core.dir/core/test_capacity.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_config_file.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config_file.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_differentiation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_differentiation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_job_queue.cpp.o"
  "CMakeFiles/test_core.dir/core/test_job_queue.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_timing.cpp.o"
  "CMakeFiles/test_core.dir/core/test_timing.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
