file(REMOVE_RECURSE
  "CMakeFiles/test_eventsvc.dir/eventsvc/test_channel_threaded.cpp.o"
  "CMakeFiles/test_eventsvc.dir/eventsvc/test_channel_threaded.cpp.o.d"
  "CMakeFiles/test_eventsvc.dir/eventsvc/test_eventsvc.cpp.o"
  "CMakeFiles/test_eventsvc.dir/eventsvc/test_eventsvc.cpp.o.d"
  "test_eventsvc"
  "test_eventsvc.pdb"
  "test_eventsvc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eventsvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
