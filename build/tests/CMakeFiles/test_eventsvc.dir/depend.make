# Empty dependencies file for test_eventsvc.
# This may be replaced when dependencies are built.
