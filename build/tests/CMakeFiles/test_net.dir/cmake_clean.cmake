file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_codec_wire.cpp.o"
  "CMakeFiles/test_net.dir/net/test_codec_wire.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_tcp_bus.cpp.o"
  "CMakeFiles/test_net.dir/net/test_tcp_bus.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_transports.cpp.o"
  "CMakeFiles/test_net.dir/net/test_transports.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
