file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_lemma_validation.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_lemma_validation.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_reintegration.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_reintegration.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_scenarios.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_scenarios.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_sim_components.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_sim_components.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
