
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_experiment.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_experiment.cpp.o.d"
  "/root/repo/tests/sim/test_invariants.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_invariants.cpp.o.d"
  "/root/repo/tests/sim/test_lemma_validation.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_lemma_validation.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_lemma_validation.cpp.o.d"
  "/root/repo/tests/sim/test_reintegration.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_reintegration.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_reintegration.cpp.o.d"
  "/root/repo/tests/sim/test_scenarios.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_scenarios.cpp.o.d"
  "/root/repo/tests/sim/test_sim_components.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_sim_components.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_sim_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/frame_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/frame_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/frame_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/eventsvc/CMakeFiles/frame_eventsvc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/frame_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/frame_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frame_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
