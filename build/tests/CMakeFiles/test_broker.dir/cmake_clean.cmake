file(REMOVE_RECURSE
  "CMakeFiles/test_broker.dir/broker/test_backup_publisher_subscriber.cpp.o"
  "CMakeFiles/test_broker.dir/broker/test_backup_publisher_subscriber.cpp.o.d"
  "CMakeFiles/test_broker.dir/broker/test_engine_properties.cpp.o"
  "CMakeFiles/test_broker.dir/broker/test_engine_properties.cpp.o.d"
  "CMakeFiles/test_broker.dir/broker/test_primary_engine.cpp.o"
  "CMakeFiles/test_broker.dir/broker/test_primary_engine.cpp.o.d"
  "test_broker"
  "test_broker.pdb"
  "test_broker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
