# Empty compiler generated dependencies file for iiot_edge_monitoring.
# This may be replaced when dependencies are built.
