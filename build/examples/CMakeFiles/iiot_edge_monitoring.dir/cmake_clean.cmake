file(REMOVE_RECURSE
  "CMakeFiles/iiot_edge_monitoring.dir/iiot_edge_monitoring.cpp.o"
  "CMakeFiles/iiot_edge_monitoring.dir/iiot_edge_monitoring.cpp.o.d"
  "iiot_edge_monitoring"
  "iiot_edge_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iiot_edge_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
