file(REMOVE_RECURSE
  "CMakeFiles/tcp_wire_demo.dir/tcp_wire_demo.cpp.o"
  "CMakeFiles/tcp_wire_demo.dir/tcp_wire_demo.cpp.o.d"
  "tcp_wire_demo"
  "tcp_wire_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_wire_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
