# Empty dependencies file for tcp_wire_demo.
# This may be replaced when dependencies are built.
