file(REMOVE_RECURSE
  "CMakeFiles/frame_analyze.dir/frame_analyze.cpp.o"
  "CMakeFiles/frame_analyze.dir/frame_analyze.cpp.o.d"
  "frame_analyze"
  "frame_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
