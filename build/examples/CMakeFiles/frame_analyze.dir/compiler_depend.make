# Empty compiler generated dependencies file for frame_analyze.
# This may be replaced when dependencies are built.
