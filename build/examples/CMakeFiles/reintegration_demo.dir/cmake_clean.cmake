file(REMOVE_RECURSE
  "CMakeFiles/reintegration_demo.dir/reintegration_demo.cpp.o"
  "CMakeFiles/reintegration_demo.dir/reintegration_demo.cpp.o.d"
  "reintegration_demo"
  "reintegration_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reintegration_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
