# Empty dependencies file for reintegration_demo.
# This may be replaced when dependencies are built.
