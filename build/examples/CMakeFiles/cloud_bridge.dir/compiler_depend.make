# Empty compiler generated dependencies file for cloud_bridge.
# This may be replaced when dependencies are built.
