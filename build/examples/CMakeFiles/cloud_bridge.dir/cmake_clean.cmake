file(REMOVE_RECURSE
  "CMakeFiles/cloud_bridge.dir/cloud_bridge.cpp.o"
  "CMakeFiles/cloud_bridge.dir/cloud_bridge.cpp.o.d"
  "cloud_bridge"
  "cloud_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
