file(REMOVE_RECURSE
  "libframe_runtime.a"
)
