# Empty compiler generated dependencies file for frame_runtime.
# This may be replaced when dependencies are built.
