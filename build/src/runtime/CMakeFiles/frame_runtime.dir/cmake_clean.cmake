file(REMOVE_RECURSE
  "CMakeFiles/frame_runtime.dir/runtime_broker.cpp.o"
  "CMakeFiles/frame_runtime.dir/runtime_broker.cpp.o.d"
  "CMakeFiles/frame_runtime.dir/runtime_publisher.cpp.o"
  "CMakeFiles/frame_runtime.dir/runtime_publisher.cpp.o.d"
  "CMakeFiles/frame_runtime.dir/system.cpp.o"
  "CMakeFiles/frame_runtime.dir/system.cpp.o.d"
  "libframe_runtime.a"
  "libframe_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
