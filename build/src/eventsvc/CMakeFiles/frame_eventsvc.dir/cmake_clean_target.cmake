file(REMOVE_RECURSE
  "libframe_eventsvc.a"
)
