file(REMOVE_RECURSE
  "CMakeFiles/frame_eventsvc.dir/dispatching.cpp.o"
  "CMakeFiles/frame_eventsvc.dir/dispatching.cpp.o.d"
  "CMakeFiles/frame_eventsvc.dir/event_channel.cpp.o"
  "CMakeFiles/frame_eventsvc.dir/event_channel.cpp.o.d"
  "libframe_eventsvc.a"
  "libframe_eventsvc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_eventsvc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
