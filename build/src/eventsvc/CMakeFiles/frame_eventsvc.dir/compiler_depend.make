# Empty compiler generated dependencies file for frame_eventsvc.
# This may be replaced when dependencies are built.
