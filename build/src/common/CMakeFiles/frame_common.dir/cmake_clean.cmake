file(REMOVE_RECURSE
  "CMakeFiles/frame_common.dir/result.cpp.o"
  "CMakeFiles/frame_common.dir/result.cpp.o.d"
  "CMakeFiles/frame_common.dir/time.cpp.o"
  "CMakeFiles/frame_common.dir/time.cpp.o.d"
  "libframe_common.a"
  "libframe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
