# Empty compiler generated dependencies file for frame_common.
# This may be replaced when dependencies are built.
