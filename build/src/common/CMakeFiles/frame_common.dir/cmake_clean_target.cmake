file(REMOVE_RECURSE
  "libframe_common.a"
)
