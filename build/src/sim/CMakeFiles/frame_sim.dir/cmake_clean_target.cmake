file(REMOVE_RECURSE
  "libframe_sim.a"
)
