
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/frame_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/frame_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/latency_model.cpp" "src/sim/CMakeFiles/frame_sim.dir/latency_model.cpp.o" "gcc" "src/sim/CMakeFiles/frame_sim.dir/latency_model.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/frame_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/frame_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/frame_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/frame_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/frame_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frame_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
