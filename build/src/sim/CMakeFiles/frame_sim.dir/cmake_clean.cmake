file(REMOVE_RECURSE
  "CMakeFiles/frame_sim.dir/experiment.cpp.o"
  "CMakeFiles/frame_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/frame_sim.dir/latency_model.cpp.o"
  "CMakeFiles/frame_sim.dir/latency_model.cpp.o.d"
  "CMakeFiles/frame_sim.dir/workload.cpp.o"
  "CMakeFiles/frame_sim.dir/workload.cpp.o.d"
  "libframe_sim.a"
  "libframe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
