# Empty compiler generated dependencies file for frame_sim.
# This may be replaced when dependencies are built.
