file(REMOVE_RECURSE
  "CMakeFiles/frame_net.dir/inproc_bus.cpp.o"
  "CMakeFiles/frame_net.dir/inproc_bus.cpp.o.d"
  "CMakeFiles/frame_net.dir/message.cpp.o"
  "CMakeFiles/frame_net.dir/message.cpp.o.d"
  "CMakeFiles/frame_net.dir/tcp.cpp.o"
  "CMakeFiles/frame_net.dir/tcp.cpp.o.d"
  "CMakeFiles/frame_net.dir/tcp_bus.cpp.o"
  "CMakeFiles/frame_net.dir/tcp_bus.cpp.o.d"
  "CMakeFiles/frame_net.dir/wire.cpp.o"
  "CMakeFiles/frame_net.dir/wire.cpp.o.d"
  "libframe_net.a"
  "libframe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
