file(REMOVE_RECURSE
  "libframe_net.a"
)
