# Empty dependencies file for frame_net.
# This may be replaced when dependencies are built.
