# Empty compiler generated dependencies file for frame_broker.
# This may be replaced when dependencies are built.
