file(REMOVE_RECURSE
  "CMakeFiles/frame_broker.dir/config.cpp.o"
  "CMakeFiles/frame_broker.dir/config.cpp.o.d"
  "CMakeFiles/frame_broker.dir/primary_engine.cpp.o"
  "CMakeFiles/frame_broker.dir/primary_engine.cpp.o.d"
  "CMakeFiles/frame_broker.dir/publisher_engine.cpp.o"
  "CMakeFiles/frame_broker.dir/publisher_engine.cpp.o.d"
  "CMakeFiles/frame_broker.dir/subscriber_engine.cpp.o"
  "CMakeFiles/frame_broker.dir/subscriber_engine.cpp.o.d"
  "libframe_broker.a"
  "libframe_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
