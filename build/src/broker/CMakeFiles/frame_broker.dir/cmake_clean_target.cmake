file(REMOVE_RECURSE
  "libframe_broker.a"
)
