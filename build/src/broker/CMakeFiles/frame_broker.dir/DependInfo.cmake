
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/config.cpp" "src/broker/CMakeFiles/frame_broker.dir/config.cpp.o" "gcc" "src/broker/CMakeFiles/frame_broker.dir/config.cpp.o.d"
  "/root/repo/src/broker/primary_engine.cpp" "src/broker/CMakeFiles/frame_broker.dir/primary_engine.cpp.o" "gcc" "src/broker/CMakeFiles/frame_broker.dir/primary_engine.cpp.o.d"
  "/root/repo/src/broker/publisher_engine.cpp" "src/broker/CMakeFiles/frame_broker.dir/publisher_engine.cpp.o" "gcc" "src/broker/CMakeFiles/frame_broker.dir/publisher_engine.cpp.o.d"
  "/root/repo/src/broker/subscriber_engine.cpp" "src/broker/CMakeFiles/frame_broker.dir/subscriber_engine.cpp.o" "gcc" "src/broker/CMakeFiles/frame_broker.dir/subscriber_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/frame_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/frame_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/frame_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
