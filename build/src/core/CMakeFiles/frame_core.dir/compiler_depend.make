# Empty compiler generated dependencies file for frame_core.
# This may be replaced when dependencies are built.
