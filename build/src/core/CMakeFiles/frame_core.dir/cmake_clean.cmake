file(REMOVE_RECURSE
  "CMakeFiles/frame_core.dir/backup_store.cpp.o"
  "CMakeFiles/frame_core.dir/backup_store.cpp.o.d"
  "CMakeFiles/frame_core.dir/capacity.cpp.o"
  "CMakeFiles/frame_core.dir/capacity.cpp.o.d"
  "CMakeFiles/frame_core.dir/config_file.cpp.o"
  "CMakeFiles/frame_core.dir/config_file.cpp.o.d"
  "CMakeFiles/frame_core.dir/differentiation.cpp.o"
  "CMakeFiles/frame_core.dir/differentiation.cpp.o.d"
  "CMakeFiles/frame_core.dir/job_queue.cpp.o"
  "CMakeFiles/frame_core.dir/job_queue.cpp.o.d"
  "CMakeFiles/frame_core.dir/message_store.cpp.o"
  "CMakeFiles/frame_core.dir/message_store.cpp.o.d"
  "CMakeFiles/frame_core.dir/retention_buffer.cpp.o"
  "CMakeFiles/frame_core.dir/retention_buffer.cpp.o.d"
  "CMakeFiles/frame_core.dir/timing.cpp.o"
  "CMakeFiles/frame_core.dir/timing.cpp.o.d"
  "CMakeFiles/frame_core.dir/topic.cpp.o"
  "CMakeFiles/frame_core.dir/topic.cpp.o.d"
  "libframe_core.a"
  "libframe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
