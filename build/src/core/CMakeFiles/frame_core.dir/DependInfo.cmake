
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backup_store.cpp" "src/core/CMakeFiles/frame_core.dir/backup_store.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/backup_store.cpp.o.d"
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/frame_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/config_file.cpp" "src/core/CMakeFiles/frame_core.dir/config_file.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/config_file.cpp.o.d"
  "/root/repo/src/core/differentiation.cpp" "src/core/CMakeFiles/frame_core.dir/differentiation.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/differentiation.cpp.o.d"
  "/root/repo/src/core/job_queue.cpp" "src/core/CMakeFiles/frame_core.dir/job_queue.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/job_queue.cpp.o.d"
  "/root/repo/src/core/message_store.cpp" "src/core/CMakeFiles/frame_core.dir/message_store.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/message_store.cpp.o.d"
  "/root/repo/src/core/retention_buffer.cpp" "src/core/CMakeFiles/frame_core.dir/retention_buffer.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/retention_buffer.cpp.o.d"
  "/root/repo/src/core/timing.cpp" "src/core/CMakeFiles/frame_core.dir/timing.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/timing.cpp.o.d"
  "/root/repo/src/core/topic.cpp" "src/core/CMakeFiles/frame_core.dir/topic.cpp.o" "gcc" "src/core/CMakeFiles/frame_core.dir/topic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/frame_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/frame_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
