file(REMOVE_RECURSE
  "libframe_core.a"
)
